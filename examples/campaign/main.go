// Campaign demonstrates the run plane: declare a measurement campaign
// as a Plan — the cross product of experiments × scenarios × seeds —
// and execute it on one concurrent engine. Outcomes stream as workers
// finish (here into a JSONL file and a live progress line), and the
// multi-seed replicates fold into cross-seed mean/stddev/CI rows — the
// variance a reproduction should report, not just one seed's numbers.
package main

import (
	"context"
	"fmt"
	"os"

	"repro"
)

func main() {
	// Three replicates of the §7.4 hybrid experiment on two floors:
	// the paper's office and a residential flat. A tiny scale keeps
	// this example interactive; drop PlanConfig for the real thing.
	cfg := repro.DefaultExperimentConfig()
	cfg.Scale = 0.05
	cfg.Decimate = 16
	plan := repro.NewPlan(
		repro.PlanConfig(cfg),
		repro.PlanExperiments("fig20"),
		repro.PlanScenarios("paper", "flat"),
		repro.PlanSeeds(1, 2, 3),
	)

	run, err := repro.Start(context.Background(), plan, repro.CampaignOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("campaign: %d jobs (1 experiment × 2 scenarios × 3 seeds)\n", len(run.Jobs()))

	// Outcomes() is a range-over-func iterator: results arrive in
	// completion order, as workers finish — a service would update
	// dashboards or persist from exactly this loop.
	f, err := os.CreateTemp("", "campaign-*.jsonl")
	if err != nil {
		panic(err)
	}
	defer os.Remove(f.Name())
	sink := repro.NewJSONLSink(f)
	for o := range run.Outcomes() {
		if o.Err != nil {
			fmt.Printf("  %-28s FAILED: %v\n", o.Job, o.Err)
			continue
		}
		if err := sink.Write(o); err != nil {
			panic(err)
		}
		verdict := "claim holds"
		if o.Claim != nil {
			verdict = "CLAIM FAILED: " + o.Claim.Error()
		}
		fmt.Printf("  %-28s done in %v (%s)\n", o.Job, o.Elapsed.Round(1e6), verdict)
	}

	// Wait returns the same outcomes in deterministic job order,
	// whatever the worker count; Aggregate folds the seed axis.
	outs, err := run.Wait()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nstreamed %d outcomes to %s\n", len(outs), f.Name())

	fmt.Println("\ncross-seed aggregate (mean over per-seed means ± 95% CI):")
	for _, r := range repro.Aggregate(outs) {
		if r.Metric != "hybrid_mbps" && r.Metric != "wifi_mbps" && r.Metric != "plc_mbps" {
			continue // the throughput columns tell the story
		}
		fmt.Printf("  %s on %-6s %-8s %8.2f ± %.2f Mb/s (σ %.2f over %d seeds)\n",
			r.Experiment, r.Scenario, r.Metric, r.Mean, r.CI95, r.Std, r.Seeds)
	}
	fmt.Println("\n(the paper reports single numbers; replicated seeds are how a")
	fmt.Println(" reproduction shows its measurements are stable, not lucky)")
}
