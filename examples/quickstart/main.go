// Quickstart: build the paper's testbed, measure one PLC link, and read
// both media through the IEEE 1905-style abstraction layer (capacity from
// BLE, loss from PBerr).
package main

import (
	"context"
	"fmt"
	"time"

	"repro"
)

func main() {
	// The Fig. 2 floor: 19 stations, two distribution boards, two PLC
	// logical networks, shared WiFi geometry. The facade takes functional
	// options — repro.WithSpec(repro.AV500) would model the faster
	// generation.
	tb := repro.NewTestbed(repro.WithSeed(1))

	// Measure station 1 → station 9 for 30 virtual seconds during
	// working hours (Monday 11:00).
	start := 11 * time.Hour
	tput, ble, pberr, err := repro.MeasureLink(tb, 1, 9, start, 30*time.Second)
	if err != nil {
		panic(err)
	}
	fmt.Printf("PLC 1→9: throughput %.1f Mb/s | avg BLE %.1f Mb/s | PBerr %.4f\n", tput, ble, pberr)
	fmt.Printf("  (the paper's Fig. 15 relation: BLE ≈ 1.7·T → %.2f here)\n", ble/tput)

	// The same pair on WiFi, through the medium-agnostic link surface.
	ctx := context.Background()
	wl, err := tb.ALLink(repro.WiFi, 1, 9)
	if err != nil {
		panic(err)
	}
	fmt.Printf("WiFi 1→9: capacity %.0f Mb/s | goodput %.1f Mb/s | connected: %v\n",
		wl.Capacity(start), wl.Goodput(start), wl.Connected(start))

	// Register both directions of both media in a 1905-style metric table
	// and query asymmetry. al.Link.Metrics feeds the table directly.
	mt := repro.NewMetricTable()
	for _, pair := range [][2]int{{1, 9}, {9, 1}} {
		pl, err := tb.ALLink(repro.PLC, pair[0], pair[1])
		if err != nil {
			panic(err)
		}
		// Estimation is traffic-driven (§7): probe, then read.
		if err := repro.ProbeLink(ctx, pl, start, 10*time.Second); err != nil {
			panic(err)
		}
		mt.Update(pair[0], pair[1], pl.Metrics(start+10*time.Second))
	}
	if ratio, ok := mt.Asymmetry(1, 9); ok {
		fmt.Printf("pair 1↔9 capacity asymmetry: %.2fx (the paper finds >1.5x on ~30%% of pairs)\n", ratio)
	}

	// The paper's link-metric guidelines (Table 3).
	fmt.Println("\nLink-metric guidelines (Table 3):")
	for _, g := range repro.Guidelines() {
		fmt.Println("  ", g)
	}
}
