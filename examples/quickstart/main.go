// Quickstart: build the paper's testbed, measure one PLC link, and read
// its IEEE 1905 metrics (capacity from BLE, loss from PBerr).
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	// The Fig. 2 floor: 19 stations, two distribution boards, two PLC
	// logical networks, shared WiFi geometry.
	tb := repro.DefaultTestbed(1)

	// Measure station 1 → station 9 for 30 virtual seconds during
	// working hours (Monday 11:00).
	start := 11 * time.Hour
	tput, ble, pberr, err := repro.MeasureLink(tb, 1, 9, start, 30*time.Second)
	if err != nil {
		panic(err)
	}
	fmt.Printf("PLC 1→9: throughput %.1f Mb/s | avg BLE %.1f Mb/s | PBerr %.4f\n", tput, ble, pberr)
	fmt.Printf("  (the paper's Fig. 15 relation: BLE ≈ 1.7·T → %.2f here)\n", ble/tput)

	// The same pair on WiFi.
	wl := tb.WiFiLink(1, 9)
	fmt.Printf("WiFi 1→9: capacity %.0f Mb/s | throughput %.1f Mb/s over %.0f m\n",
		wl.Capacity(start), wl.Throughput(start), wl.Distance())

	// Register both in a 1905-style metric table and query asymmetry.
	mt := repro.NewMetricTable()
	mt.Update(1, 9, repro.LinkMetrics{CapacityMbps: ble, Loss: pberr, UpdatedAt: start})
	_, revBLE, revPB, err := repro.MeasureLink(tb, 9, 1, start, 30*time.Second)
	if err != nil {
		panic(err)
	}
	mt.Update(9, 1, repro.LinkMetrics{CapacityMbps: revBLE, Loss: revPB, UpdatedAt: start})
	if ratio, ok := mt.Asymmetry(1, 9); ok {
		fmt.Printf("pair 1↔9 capacity asymmetry: %.2fx (the paper finds >1.5x on ~30%% of pairs)\n", ratio)
	}

	// The paper's link-metric guidelines (Table 3).
	fmt.Println("\nLink-metric guidelines (Table 3):")
	for _, g := range repro.Guidelines() {
		fmt.Println("  ", g)
	}
}
