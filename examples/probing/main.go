// Probing demonstrates the §7.3 quality-adaptive probing schedule: in a
// network of n stations, unicast probing costs O(n²); adapting the probe
// interval to link quality cuts the overhead (the paper: 32%) while
// keeping capacity estimates accurate.
package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	tb := repro.NewTestbed(repro.WithSeed(1))
	night := 23 * time.Hour

	policies := []core.ProbingPolicy{
		repro.PaperAdaptivePolicy(),
		repro.FixedPolicy{Every: 5 * time.Second},
		repro.FixedPolicy{Every: 80 * time.Second},
	}
	evals := make([]core.ProbingEval, len(policies))
	for i := range evals {
		evals[i].Policy = policies[i].Name()
	}

	// Trace 10 stations' outgoing links (network A) at the 50 ms MM
	// rate, then replay each trace through the three policies. The raw
	// PLC link is used deliberately: the probing policies of §7.3 are
	// defined on the BLE, the PLC-specific metric beneath the
	// abstraction layer's goodput-unit capacity.
	links := 0
	for a := 0; a < 10; a++ {
		for b := 0; b < 10; b++ {
			if a == b {
				continue
			}
			l, err := tb.PLCLink(a, b)
			if err != nil {
				continue
			}
			ser := &stats.Series{}
			for t := night; t < night+30*time.Second; t += 50 * time.Millisecond {
				l.Saturate(t, t+50*time.Millisecond, 50*time.Millisecond)
				ser.Add(t, l.AvgBLE())
			}
			for i, p := range policies {
				ev := core.EvaluateProbing(ser, p)
				evals[i].Errors = append(evals[i].Errors, ev.Errors...)
				evals[i].Probes += ev.Probes
				evals[i].Duration += ev.Duration
			}
			links++
		}
	}

	fmt.Printf("probed %d directed links (10 stations → O(n²) overhead)\n\n", links)
	fmt.Println("policy              mean err (Mb/s)   probes   overhead (kb/s, 1500B probes)")
	for _, ev := range evals {
		fmt.Printf("%-18s  %15.2f  %7d  %8.1f\n",
			ev.Policy, ev.MeanError(), ev.Probes, ev.OverheadKbps(1500))
	}
	saving := 1 - float64(evals[0].Probes)/float64(evals[1].Probes)
	fmt.Printf("\nadaptive vs fixed-5s: %.0f%% fewer probes (the paper reports 32%%)\n", saving*100)
}
