package repro

// One benchmark per table and figure of the paper's evaluation: each runs
// the corresponding harness at benchmark scale and reports the headline
// quantities as custom metrics, so `go test -bench . -benchmem` regenerates
// the study end to end. The absolute numbers come from the simulated
// substrate (see DESIGN.md); the shapes match the paper (EXPERIMENTS.md).

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/campaign"
	"repro/internal/experiments"
)

// benchCfg keeps benchmark iterations affordable while preserving every
// qualitative result.
func benchCfg() experiments.Config {
	return experiments.Config{Seed: 1, Scale: 0.05, Decimate: 16}
}

func BenchmarkFig03SpatialWiFiVsPLC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig03(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PctPLCFaster, "%plc-faster")
		b.ReportMetric(r.MaxSigmaW, "maxσ-wifi")
		b.ReportMetric(r.MaxSigmaP, "maxσ-plc")
	}
}

func BenchmarkFig04TemporalWiFiVsPLC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig04(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Good.SigmaWiFi/maxNonZero(r.Good.SigmaPLC), "σ-ratio-good")
	}
}

func BenchmarkFig06Asymmetry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig06(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PctAbove1_5x, "%asym>1.5x")
		b.ReportMetric(r.WorstRatio, "worst-ratio")
	}
}

func BenchmarkFig07DistanceAndPBerr(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig07(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CorrDistance, "corr-dist")
		b.ReportMetric(r.BareCableDropMbps, "bare-70m-drop")
	}
}

func BenchmarkFig09InvarianceScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig09(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Average.SpreadMbps, "slot-spread")
		b.ReportMetric(r.Good.PeriodicityScore, "periodicity")
	}
}

func BenchmarkFig10CycleScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig10(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Traces)), "traces")
	}
}

func BenchmarkFig11AlphaVsQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig11(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CorrQualityAlpha, "corr-α")
		b.ReportMetric(r.CorrQualityStd, "corr-σ")
	}
}

func BenchmarkFig12RandomScale2Days(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig12(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.NightGainMbps, "21:00-gain")
		b.ReportMetric(r.DayDipMbps, "day-dip")
	}
}

func BenchmarkFig13TwoWeeksGoodLink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig13(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanStd, "hourly-σ")
	}
}

func BenchmarkFig14TwoWeeksBadLink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig14(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanStd, "hourly-σ")
		b.ReportMetric(r.DayNightDip, "day-dip")
	}
}

func BenchmarkFig15BLEvsThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig15(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Slope, "slope")
		b.ReportMetric(r.R2, "r2")
	}
}

func BenchmarkFig16ConvergenceVsRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig16(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Curves[0].TimeTo90.Seconds(), "t90-1pps-s")
		b.ReportMetric(r.Curves[3].TimeTo90.Seconds(), "t90-200pps-s")
	}
}

func BenchmarkFig17PauseResume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig17(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		worst := 1.0
		for _, l := range r.Links {
			if l.RetainedRatio < worst {
				worst = l.RetainedRatio
			}
		}
		b.ReportMetric(worst, "retention")
	}
}

func BenchmarkFig18ProbeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig18(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Sizes[1].FinalBLE, "ble-520B")
		b.ReportMetric(r.Sizes[3].FinalBLE, "ble-1300B")
	}
}

func BenchmarkFig19ProbingPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig19(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OverheadSavingPct, "%overhead-saved")
		b.ReportMetric(r.AccuracyRatio, "err-vs-5s")
	}
}

func BenchmarkFig20HybridAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig20(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Aggregate.HybridVsSumRatio, "hybrid/sum")
		b.ReportMetric(r.Aggregate.RoundRobinVs2MinRate, "rr/2min")
		b.ReportMetric(r.MeanSpeedup, "dl-speedup")
	}
}

func BenchmarkFig21BroadcastETX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig21(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.FracAtFloor, "%at-floor")
	}
}

func BenchmarkFig22UETX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig22(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CorrPBerr, "corr-pberr")
		b.ReportMetric(r.CorrBLE, "corr-ble")
	}
}

func BenchmarkFig23ContentionSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig23(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SensitiveSaturated.BLERatio, "sensitive-ratio")
		b.ReportMetric(r.ImmuneSaturated.BLERatio, "immune-ratio")
	}
}

func BenchmarkFig24BurstProbing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig24(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SinglePackets.BLERatio, "single-ratio")
		b.ReportMetric(r.Bursts.BLERatio, "burst-ratio")
	}
}

func BenchmarkTable1Findings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable1(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		ok := 0
		for _, f := range r.Findings {
			if f.Holds {
				ok++
			}
		}
		b.ReportMetric(float64(ok)/float64(len(r.Findings)), "findings-ok")
	}
}

func BenchmarkTable2Methods(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable2(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		ok := 0
		for _, c := range r.Checks {
			if c.OK {
				ok++
			}
		}
		b.ReportMetric(float64(ok)/float64(len(r.Checks)), "methods-ok")
	}
}

func BenchmarkTable3Guidelines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable3(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Guidelines)), "rows")
	}
}

func maxNonZero(x float64) float64 {
	if x <= 0 {
		return 1e-9
	}
	return x
}

// BenchmarkCampaignSerial runs the full measurement campaign one
// experiment at a time — the baseline for the parallel engine.
func BenchmarkCampaignSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outs, err := campaign.Collect(context.Background(), campaign.NewPlan(campaign.PlanConfig(benchCfg())), campaign.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(outs)), "experiments")
	}
}

// BenchmarkCampaignParallel runs the campaign on one worker per CPU. On a
// multicore box the longest-first schedule cuts wall-clock by ≥2x at 4
// cores (the serial tail is table1 + fig14, ≈40% of total work).
func BenchmarkCampaignParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outs, err := campaign.Collect(context.Background(), campaign.NewPlan(campaign.PlanConfig(benchCfg())), campaign.Options{Workers: runtime.GOMAXPROCS(0)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(outs)), "experiments")
	}
}
