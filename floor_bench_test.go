package repro

// Floor-fanout benchmarks: the publish cost of the long-lived metric
// plane (internal/floor) — one hosted floor ticking at 1 s cadence into
// N subscribers, measured for the diff protocol against the
// full-snapshot baseline. The diff path is what lets a steady-state
// floor with many subscribers cost near-nothing per tick: only links
// whose state moved are published, and most ticks move nothing. Each
// subscriber's updates are also marshalled to wire JSON, so the numbers
// reflect what a planed deployment would actually pay per tick,
// fan-out and serialisation included.

import (
	"testing"
	"time"

	"repro/internal/floor"
	"repro/internal/floor/fanout"
	"repro/internal/testbed"
)

// benchFloorFanout ticks one hosted floor across a stretch of virtual
// time with n attached subscribers, every subscriber draining and
// marshalling each update. Floor assembly sits outside the timer — the
// steady-state publish path is the measurement.
func benchFloorFanout(b *testing.B, subscribers int, fullSnapshots bool) {
	b.ReportAllocs()
	opts := testbed.DefaultOptions()
	rt, err := floor.New(floor.Config{
		ID:            "bench",
		Scenario:      "paper",
		Options:       opts,
		Start:         11 * time.Hour,
		Cadence:       time.Second,
		Buffer:        4, // small rings: the drop path is part of the cost
		FullSnapshots: fullSnapshots,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	subs := make([]*subDrain, subscribers)
	for i := range subs {
		sub, _, _ := rt.Subscribe()
		subs[i] = &subDrain{sub: sub}
		defer sub.Close()
	}

	t := 11 * time.Hour
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for tick := 0; tick < 10; tick++ {
			t += time.Second
			if err := rt.AdvanceTo(t); err != nil {
				b.Fatal(err)
			}
			for _, s := range subs {
				s.drain(b)
			}
		}
	}
}

// subDrain drains one subscriber, marshalling every update to wire JSON.
type subDrain struct {
	sub   *fanout.Sub[floor.Update]
	bytes int
}

func (s *subDrain) drain(b *testing.B) {
	for {
		u, _, ok := s.sub.TryNext()
		if !ok {
			return
		}
		data, err := floor.MarshalUpdate(u)
		if err != nil {
			b.Fatal(err)
		}
		s.bytes += len(data)
	}
}

func BenchmarkFloorFanoutDiff1(b *testing.B)  { benchFloorFanout(b, 1, false) }
func BenchmarkFloorFanoutDiff8(b *testing.B)  { benchFloorFanout(b, 8, false) }
func BenchmarkFloorFanoutDiff64(b *testing.B) { benchFloorFanout(b, 64, false) }
func BenchmarkFloorFanoutFull8(b *testing.B)  { benchFloorFanout(b, 8, true) }
