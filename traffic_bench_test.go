package repro

// Traffic-plane benchmarks: the steady-state per-tick cost of the
// multi-flow workload engine (internal/traffic) on the large-office
// floor at 8, 64 and 512 persistent flows. A tick prices the topology
// through ONE batched snapshot and re-evaluates routes only for flows
// whose links' state versions moved, so the cost should scale with the
// tick's dirty links — not with flows × links. The 8→512 sweep is the
// witness: a 64x flow count must not cost anywhere near 64x per tick.

import (
	"testing"
	"time"

	"repro/internal/testbed"
	"repro/internal/traffic"
)

// benchTrafficTick drives one engine over the large-office floor with a
// saturating elephant workload capped at exactly `flows` concurrent
// flows: admission refills the cap as flows complete, so every timed
// tick serves a full house. Assembly and warm-up (filling the cap,
// first-tick PLC probe sweep) sit outside the timer.
func benchTrafficTick(b *testing.B, flows int) { benchTrafficTickMode(b, flows, false) }

func benchTrafficTickMode(b *testing.B, flows int, seal bool) {
	b.ReportAllocs()
	opts := testbed.DefaultOptions()
	opts.Scenario = "large-office"
	opts.Decimate = 16
	tb := testbed.New(opts)
	topo, err := tb.Topology()
	if err != nil {
		b.Fatal(err)
	}
	wl := traffic.Workload{
		Name:       "bench-saturate",
		Arrival:    traffic.ArrivalPoisson,
		RatePerMin: 600,     // refill the cap within a tick of any completion
		SizeKB:     1 << 20, // 1 GB elephants: flows persist across the window
		MaxFlows:   flows,
	}
	pol, err := traffic.ParsePolicy("hybrid")
	if err != nil {
		b.Fatal(err)
	}
	h, err := traffic.NewHooks(topo, wl, traffic.EngineConfig{Policy: pol, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}

	t := 11 * time.Hour
	tick := func() {
		t += time.Second
		h.PreTick(t)
		h.OnTick(t, topo.Snapshot(t))
	}
	for warm := 0; warm < 30 && h.E.ActiveFlows() < flows; warm++ {
		tick()
	}
	if got := h.E.ActiveFlows(); got < flows {
		b.Fatalf("warm-up admitted %d flows, want %d", got, flows)
	}
	if seal {
		h.E.SealArrivals()
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < 10; n++ {
			tick()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(h.E.ActiveFlows()), "active-flows")
}

func BenchmarkTrafficTick8Flows(b *testing.B)   { benchTrafficTick(b, 8) }
func BenchmarkTrafficTick64Flows(b *testing.B)  { benchTrafficTick(b, 64) }
func BenchmarkTrafficTick512Flows(b *testing.B) { benchTrafficTick(b, 512) }

// BenchmarkTrafficTickSteadyState pins the floor of the per-tick cost:
// arrivals are sealed after warm-up, so a timed tick draws no arrivals
// and admits nothing — what remains is the incremental snapshot, the
// pooled contention/drain arithmetic and the route change detection over
// a warm engine. This is the allocation budget the pooled tick scratch
// defends (one op = 10 ticks, like the sweep above).
func BenchmarkTrafficTickSteadyState(b *testing.B) { benchTrafficTickMode(b, 8, true) }
