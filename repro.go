// Package repro is the public facade of the reproduction of "Electri-Fi
// Your Data: Measuring and Combining Power-Line Communications with WiFi"
// (Vlachou, Henri, Thiran — IMC 2015).
//
// It re-exports the pieces a downstream user needs:
//
//   - the simulated measurement environment (the paper's Fig. 2 testbed
//     with its electrical grid, HomePlug AV stations and WiFi radios);
//   - the link-metric machinery of the paper's contribution (BLE-based
//     capacity estimation, PBerr, probing policies, ETX/U-ETX);
//   - the hybrid WiFi+PLC load-balancing layer of §7.4;
//   - one runnable harness per table and figure of the evaluation.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results. The examples/ directory shows the API on
// realistic scenarios.
package repro

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/al"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/plc"
	"repro/internal/plc/phy"
	"repro/internal/scenario"
	"repro/internal/testbed"
	"repro/internal/wifi"
)

// Re-exported core types: the measurement environment.
type (
	// Testbed is the paper's 19-station floor (Fig. 2).
	Testbed = testbed.Testbed
	// PLCLink is a directed HomePlug AV link with live channel
	// estimation.
	PLCLink = plc.Link
	// WiFiLink is a directed 802.11n link over the same floor plan.
	WiFiLink = wifi.Link
	// Spec selects the HomePlug generation (AV or AV500).
	Spec = phy.Spec
	// EstimatorConfig tunes the vendor channel-estimation model.
	EstimatorConfig = phy.EstimatorConfig
)

// HomePlug generations.
const (
	AV    = phy.AV
	AV500 = phy.AV500
)

// Re-exported abstraction layer: the IEEE 1905-style medium-agnostic
// surface. Schedulers, routers and services consume Link/Topology only;
// a new medium joins the hybrid network by implementing Link.
type (
	// Link is one directed medium attachment (PLC, WiFi, ...).
	Link = al.Link
	// Topology enumerates every link of every medium, per station.
	Topology = al.Topology
	// Node is one station's cross-media view of the topology.
	Node = al.Node
	// Sample is one streamed metric observation from Watch.
	Sample = al.Sample
	// Medium identifies the technology behind a link.
	Medium = core.Medium
	// LinkState is one link's fully evaluated view at one instant.
	LinkState = al.LinkState
	// Snapshot is a batched one-pass evaluation of many links, indexed
	// by (src, dst, medium) — Topology.Snapshot(t) evaluates a whole
	// floor against one advance of the shared channel plane.
	Snapshot = al.Snapshot
)

// SnapshotLinks evaluates the given links at one instant in a single
// pass (see Topology.Snapshot for whole-floor snapshots).
func SnapshotLinks(t time.Duration, links ...Link) *Snapshot {
	return al.NewSnapshot(t, links...)
}

// Media known to the abstraction layer.
const (
	PLC  = core.PLC
	WiFi = core.WiFi
)

// ProbeLink drives a link's estimation machinery for dur of virtual time
// starting at t, honouring ctx between traffic windows.
func ProbeLink(ctx context.Context, l Link, t, dur time.Duration) error {
	return al.Probe(ctx, l, t, dur)
}

// WatchLink streams live 1905 metrics of a link every step of virtual
// time; the channel closes when ctx is cancelled.
func WatchLink(ctx context.Context, l Link, start, step time.Duration) <-chan Sample {
	return al.Watch(ctx, l, start, step)
}

// TestbedOption configures NewTestbed (functional options).
type TestbedOption func(*testbed.Options)

// WithSpec selects the HomePlug generation (default AV).
func WithSpec(s Spec) TestbedOption {
	return func(o *testbed.Options) { o.Spec = s }
}

// WithSeed sets the simulation seed; equal seeds rebuild the floor bit
// for bit (default 1).
func WithSeed(seed int64) TestbedOption {
	return func(o *testbed.Options) { o.Seed = seed }
}

// WithDecimate trades carrier resolution for speed: 1 models all 917 AV
// carriers, the default 8 keeps every qualitative result at laptop cost.
func WithDecimate(d int) TestbedOption {
	return func(o *testbed.Options) { o.Decimate = d }
}

// WithEstimator overrides the channel-estimation tuning.
func WithEstimator(cfg EstimatorConfig) TestbedOption {
	return func(o *testbed.Options) { o.Estimator = &cfg }
}

// WithScenario selects the deployment by registry name ("paper",
// "flat", "large-office", "apartment") or procedural spec
// ("gen:stations=24,boards=2,seed=3"). Validate free-form input with
// ParseScenario first; NewTestbed panics on an unknown name.
func WithScenario(name string) TestbedOption {
	return func(o *testbed.Options) { o.Scenario = name }
}

// NewTestbed builds the Fig. 2 floor: 19 stations, two distribution
// boards, two PLC logical networks, shared WiFi geometry.
//
//	tb := repro.NewTestbed(repro.WithSpec(repro.AV500), repro.WithSeed(7))
func NewTestbed(opts ...TestbedOption) *Testbed {
	o := testbed.DefaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return testbed.New(o)
}

// DefaultTestbed builds the floor with sensible defaults for the given
// seed (HomePlug AV, moderate carrier resolution).
func DefaultTestbed(seed int64) *Testbed {
	return NewTestbed(WithSeed(seed))
}

// Scenario machinery: deployments as data. A Blueprint describes a
// whole measurement environment (boards, cable spines, stations,
// appliance population, CCo placement); the testbed assembles it.
type (
	// ScenarioBlueprint is a complete deployment description.
	ScenarioBlueprint = scenario.Blueprint
	// ScenarioParams parameterizes a procedural deployment.
	ScenarioParams = scenario.Params
)

// Scenarios lists the preset scenario names.
func Scenarios() []string { return scenario.Names() }

// ParseScenario resolves a scenario selection — a preset name, a
// "gen:stations=N,boards=M,seed=S" spec, or "" for the paper floor —
// into a validated blueprint.
func ParseScenario(sel string) (*ScenarioBlueprint, error) { return scenario.Parse(sel) }

// GenerateScenario emits a procedural N-station/M-board deployment;
// equal params produce identical blueprints.
func GenerateScenario(p ScenarioParams) *ScenarioBlueprint { return scenario.Generate(p) }

// BuildScenario assembles a blueprint into a live testbed — the escape
// hatch for deployments no preset covers.
//
//	bp := repro.GenerateScenario(repro.ScenarioParams{Stations: 24, Boards: 2})
//	tb, err := repro.BuildScenario(bp, repro.WithSeed(7))
func BuildScenario(bp *ScenarioBlueprint, opts ...TestbedOption) (*Testbed, error) {
	o := testbed.DefaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return testbed.Build(bp, o)
}

// Re-exported metric machinery: the paper's contribution.
type (
	// LinkMetrics is a 1905-style metric-table entry.
	LinkMetrics = core.LinkMetrics
	// MetricTable registers per-link metrics.
	MetricTable = core.MetricTable
	// ProbingPolicy schedules capacity probes.
	ProbingPolicy = core.ProbingPolicy
	// FixedPolicy probes at one interval.
	FixedPolicy = core.FixedPolicy
	// AdaptivePolicy probes by link quality (§7.3).
	AdaptivePolicy = core.AdaptivePolicy
)

// NewMetricTable returns an empty 1905-style metric registry.
func NewMetricTable() *MetricTable { return core.NewMetricTable() }

// PaperAdaptivePolicy returns the §7.3 quality-adaptive probing schedule.
func PaperAdaptivePolicy() AdaptivePolicy { return core.PaperAdaptivePolicy() }

// Guidelines returns the paper's Table 3 link-metric estimation rules.
func Guidelines() []core.Guideline { return core.Guidelines() }

// ExperimentConfig controls a paper-experiment run.
type ExperimentConfig = experiments.Config

// ExperimentResult is the common interface of experiment outputs.
type ExperimentResult = experiments.Result

// ExperimentMeta describes a registered experiment (id, paper reference,
// estimated cost used by the campaign scheduler).
type ExperimentMeta = experiments.Meta

// ExperimentRow is one structured data point of a figure or table.
type ExperimentRow = experiments.Row

// ExperimentExport is the machine-readable envelope of one result.
type ExperimentExport = experiments.Export

// The run plane: campaigns are declared as a CampaignPlan — the cross
// product of {experiments × scenarios × seeds} over a base config — and
// executed by one engine. Start streams outcomes as workers finish;
// Collect blocks for the job-ordered slice; Aggregate folds multi-seed
// replicates into per-(experiment, scenario) mean/stddev/CI rows.
type (
	// CampaignPlan declares a campaign: experiments × scenarios × seeds.
	CampaignPlan = campaign.Plan
	// PlanOption configures NewPlan.
	PlanOption = campaign.PlanOption
	// CampaignJob is one cross-product cell (experiment, scenario, seed).
	CampaignJob = campaign.Job
	// JobOutcome is one job's result, claim verdict and timing.
	JobOutcome = campaign.JobOutcome
	// CampaignRun is a handle on an executing campaign.
	CampaignRun = campaign.Run
	// CampaignOptions tunes execution (workers, per-job timeout,
	// progress observer, testbed memoization).
	CampaignOptions = campaign.Options
	// CampaignEvent is one progress notification of a running campaign.
	CampaignEvent = campaign.Event
	// CampaignSink consumes streamed outcomes (JSONL, CSV, ...).
	CampaignSink = campaign.Sink
	// AggregateRow is one cross-seed mean/stddev/CI statistic.
	AggregateRow = campaign.AggregateRow
)

// NewPlan declares a campaign over the default config; options select
// the axes:
//
//	plan := repro.NewPlan(
//	    repro.PlanExperiments("fig20"),
//	    repro.PlanScenarios("paper", "flat"),
//	    repro.PlanSeeds(1, 2, 3),
//	)
func NewPlan(opts ...PlanOption) CampaignPlan { return campaign.NewPlan(opts...) }

// PlanConfig sets the plan's base experiment configuration.
func PlanConfig(cfg ExperimentConfig) PlanOption { return campaign.PlanConfig(cfg) }

// PlanExperiments selects harnesses by id, in order (default: all).
func PlanExperiments(ids ...string) PlanOption { return campaign.PlanExperiments(ids...) }

// PlanScenarios lists the deployments the plan measures.
func PlanScenarios(names ...string) PlanOption { return campaign.PlanScenarios(names...) }

// PlanSeeds lists the replicate seeds of the plan.
func PlanSeeds(seeds ...int64) PlanOption { return campaign.PlanSeeds(seeds...) }

// Start validates the plan and launches it on a worker pool, returning
// a handle immediately: Outcomes() streams results as workers finish
// (a range-over-func iterator), Wait() returns the collected outcomes
// in deterministic job order, Stream(sinks...) persists outcomes as
// they complete. Cancelling ctx aborts the run between measurement
// windows.
func Start(ctx context.Context, plan CampaignPlan, opts CampaignOptions) (*CampaignRun, error) {
	return campaign.Start(ctx, plan, opts)
}

// Collect runs the whole plan and returns the job-ordered outcomes —
// Start followed by Wait.
func Collect(ctx context.Context, plan CampaignPlan, opts CampaignOptions) ([]JobOutcome, error) {
	return campaign.Collect(ctx, plan, opts)
}

// Aggregate folds multi-seed outcomes into per-(experiment, scenario)
// cross-seed statistics; see campaign.Aggregate.
func Aggregate(outs []JobOutcome) []AggregateRow { return campaign.Aggregate(outs) }

// NewJSONLSink streams outcomes to w as JSON Lines (one object per
// outcome, figure rows included).
func NewJSONLSink(w io.Writer) CampaignSink { return campaign.NewJSONLSink(w) }

// NewCSVSink streams outcome-level CSV rows to w.
func NewCSVSink(w io.Writer) CampaignSink { return campaign.NewCSVSink(w) }

// Experiments lists the identifiers of every table/figure harness.
func Experiments() []string { return experiments.IDs() }

// ListExperiments returns the metadata of every registered harness.
func ListExperiments() []ExperimentMeta { return experiments.List() }

// DescribeExperiment returns an experiment's paper reference.
func DescribeExperiment(id string) string { return experiments.Describe(id) }

// RunExperiment executes one table/figure harness.
func RunExperiment(id string, cfg ExperimentConfig) (ExperimentResult, error) {
	return experiments.Run(context.Background(), id, cfg)
}

// RunExperimentContext executes one table/figure harness under ctx;
// cancelling the context aborts the harness between measurement windows.
func RunExperimentContext(ctx context.Context, id string, cfg ExperimentConfig) (ExperimentResult, error) {
	return experiments.Run(ctx, id, cfg)
}

// ExportExperiment renders a result as indented JSON (id, paper ref,
// summary, structured rows).
func ExportExperiment(r ExperimentResult) ([]byte, error) {
	return experiments.MarshalResult(r)
}

// DefaultExperimentConfig is a laptop-scale configuration that still
// reproduces every qualitative result of the paper.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// RunAll executes every registered experiment — concurrently, one
// worker per CPU; results are bit-identical to a serial run because
// every harness builds its own seeded testbed — and writes each summary
// line to w in presentation order as soon as it and its predecessors
// complete. Cancelling ctx aborts the campaign between measurement
// windows; a failed write stops the campaign and returns the writer's
// error. The successful results are returned in presentation order.
func RunAll(ctx context.Context, w io.Writer, cfg ExperimentConfig) ([]ExperimentResult, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	run, err := Start(runCtx, NewPlan(PlanConfig(cfg)), CampaignOptions{})
	if err != nil {
		return nil, err
	}
	// Outcomes stream in completion order; a small reorder buffer emits
	// each summary as soon as every earlier job has finished, so output
	// is progressive yet deterministic.
	index := make(map[CampaignJob]int)
	for i, j := range run.Jobs() {
		index[j] = i
	}
	pending := make(map[int]JobOutcome)
	var results []ExperimentResult
	var werr error
	next := 0
stream:
	for o := range run.Outcomes() {
		pending[index[o.Job]] = o
		//reprolint:allow ctxloop -- drains the bounded pending reorder buffer; every iteration deletes an entry, so it terminates without waiting
		for {
			head, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if head.Err != nil || head.Result == nil {
				continue // Wait reports the first failure in job order
			}
			results = append(results, head.Result)
			if w != nil {
				if _, werr = io.WriteString(w, head.Result.Summary()+"\n"); werr != nil {
					cancel() // stop the campaign; the writer is gone
					break stream
				}
			}
		}
	}
	_, err = run.Wait()
	if werr != nil {
		return results, fmt.Errorf("repro: writing summary: %w", werr)
	}
	return results, err
}

// MeasureLink is a convenience helper: it saturates the directed PLC link
// a→b for dur and returns (throughput Mb/s, average BLE Mb/s, PBerr) at
// the given virtual start time.
func MeasureLink(tb *Testbed, a, b int, start, dur time.Duration) (throughput, avgBLE, pberr float64, err error) {
	l, err := tb.PLCLink(a, b)
	if err != nil {
		return 0, 0, 0, err
	}
	l.Saturate(start, start+dur, 100*time.Millisecond)
	return l.Throughput(start + dur), l.AvgBLE(), l.PBerr(start + dur), nil
}
