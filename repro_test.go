package repro

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFacadeMeasureLink(t *testing.T) {
	tb := DefaultTestbed(1)
	tput, ble, pberr, err := MeasureLink(tb, 0, 2, 23*time.Hour, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tput <= 0 || ble <= 0 {
		t.Fatalf("measured nothing: T=%v BLE=%v", tput, ble)
	}
	if pberr < 0 || pberr > 1 {
		t.Fatalf("PBerr out of range: %v", pberr)
	}
	if r := ble / tput; r < 1.3 || r > 2.2 {
		t.Fatalf("BLE/T = %.2f, want near the paper's 1.7", r)
	}
	if _, _, _, err := MeasureLink(tb, 0, 15, 0, time.Second); err == nil {
		t.Fatal("cross-network link must error")
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) != 25 {
		t.Fatalf("experiments = %d, want 25 (20 figures/traces + 3 tables + 2 flow experiments)", len(ids))
	}
	for _, id := range ids {
		if DescribeExperiment(id) == "" {
			t.Fatalf("no description for %s", id)
		}
	}
	// Run the cheapest experiment end to end through the facade.
	r, err := RunExperiment("table3", DefaultExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "table3" || !strings.Contains(r.Table(), "Unicast") {
		t.Fatalf("table3 rendering: %q", r.Table())
	}
}

func TestFacadeGuidelines(t *testing.T) {
	if len(Guidelines()) != 7 {
		t.Fatal("Table 3 has 7 guidelines")
	}
	p := PaperAdaptivePolicy()
	if p.Interval(30) >= p.Interval(120) {
		t.Fatal("bad links must be probed more often than good ones")
	}
}

func TestFacadeMetricTable(t *testing.T) {
	mt := NewMetricTable()
	mt.Update(1, 2, LinkMetrics{CapacityMbps: 90})
	mt.Update(2, 1, LinkMetrics{CapacityMbps: 45})
	ratio, ok := mt.Asymmetry(1, 2)
	if !ok || ratio != 2 {
		t.Fatalf("asymmetry = %v %v", ratio, ok)
	}
}

func TestFacadeCampaignPlan(t *testing.T) {
	cfg := ExperimentConfig{Seed: 1, Scale: 0.05, Decimate: 16}
	ids := []string{"fig18", "table2", "table3"}
	outs, err := Collect(context.Background(),
		NewPlan(PlanConfig(cfg), PlanExperiments(ids...)),
		CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o.Err != nil || o.Result == nil {
			t.Fatalf("%s: %v", o.Job, o.Err)
		}
		if o.Experiment.ID != ids[i] {
			t.Fatalf("outcome %d = %s, want %s", i, o.Experiment.ID, ids[i])
		}
		// Parallel results must match a direct serial run bit for bit.
		serial, err := RunExperiment(o.Experiment.ID, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Table() != o.Result.Table() || serial.Summary() != o.Result.Summary() {
			t.Fatalf("%s: parallel output differs from serial", o.Experiment.ID)
		}
	}
}

func TestFacadeStreamingRun(t *testing.T) {
	cfg := ExperimentConfig{Seed: 1, Scale: 0.05, Decimate: 16}
	run, err := Start(context.Background(),
		NewPlan(PlanConfig(cfg), PlanExperiments("fig18", "table3"), PlanSeeds(1, 2)),
		CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	for o := range run.Outcomes() {
		if o.Err != nil {
			t.Fatalf("%s: %v", o.Job, o.Err)
		}
		streamed++
	}
	outs, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if streamed != 4 || len(outs) != 4 {
		t.Fatalf("streamed %d, collected %d, want 4", streamed, len(outs))
	}
	rows := Aggregate(outs)
	if len(rows) == 0 {
		t.Fatal("no aggregate rows from a 2-seed plan")
	}
	for _, r := range rows {
		if r.Seeds != 2 {
			t.Fatalf("aggregate row %+v: want 2 replicates", r)
		}
	}
}

// errWriter fails after n successful writes.
type errWriter struct{ n, writes int }

func (w *errWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.n {
		return 0, errors.New("pipe closed")
	}
	return len(p), nil
}

func TestFacadeRunAll(t *testing.T) {
	cfg := ExperimentConfig{Seed: 1, Scale: 0.05, Decimate: 16}

	// A cancelled context aborts instead of running the campaign.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunAll(ctx, nil, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Writer errors propagate (the old facade silently dropped them).
	if _, err := RunAll(context.Background(), &errWriter{n: 0}, cfg); err == nil ||
		!strings.Contains(err.Error(), "pipe closed") {
		t.Fatalf("err = %v, want the writer failure", err)
	}
}

func TestFacadeStructuredExport(t *testing.T) {
	r, err := RunExperiment("table3", DefaultExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows()) != 7 {
		t.Fatalf("table3 rows = %d, want 7", len(r.Rows()))
	}
	raw, err := ExportExperiment(r)
	if err != nil {
		t.Fatal(err)
	}
	var ex ExperimentExport
	if err := json.Unmarshal(raw, &ex); err != nil {
		t.Fatal(err)
	}
	if ex.ID != "table3" || ex.Ref == "" || len(ex.Rows) != 7 || ex.Summary != r.Summary() {
		t.Fatalf("export round-trip lost data: %+v", ex)
	}
}

func TestFacadeContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunExperimentContext(ctx, "fig03", DefaultExperimentConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFacadeOptionsAPI(t *testing.T) {
	// Functional options: spec, seed and decimation compose; defaults
	// match DefaultTestbed.
	av5 := NewTestbed(WithSpec(AV500), WithSeed(7), WithDecimate(16))
	av := NewTestbed(WithSeed(7), WithDecimate(16))
	night := 23 * time.Hour
	l5, err := av5.PLCLink(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	l, err := av.PLCLink(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	l5.Saturate(night, night+3*time.Second, 500*time.Millisecond)
	l.Saturate(night, night+3*time.Second, 500*time.Millisecond)
	if l5.AvgBLE() <= l.AvgBLE() {
		t.Fatalf("WithSpec(AV500) had no effect: %v vs %v", l5.AvgBLE(), l.AvgBLE())
	}
	if opts := DefaultTestbed(3).Opts(); opts.Seed != 3 || opts.Decimate != 8 {
		t.Fatalf("DefaultTestbed options = %+v", opts)
	}
}

func TestFacadeAbstractionLayer(t *testing.T) {
	tb := NewTestbed(WithSeed(1), WithDecimate(16))
	topo, err := tb.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Links()) == 0 {
		t.Fatal("empty topology")
	}
	ctx := context.Background()
	pl, err := tb.ALLink(PLC, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ProbeLink(ctx, pl, 23*time.Hour, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	m := pl.Metrics(23*time.Hour + 2*time.Second)
	if m.Medium != PLC || m.CapacityMbps <= 0 {
		t.Fatalf("metrics through the facade = %+v", m)
	}
	// Feed a metric table straight from the link.
	mt := NewMetricTable()
	mt.Update(0, 2, m)
	if got, ok := mt.Lookup(0, 2); !ok || got.CapacityMbps != m.CapacityMbps {
		t.Fatal("table feed lost the entry")
	}
	// Watch streams samples and honours cancellation.
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	n := 0
	for s := range WatchLink(wctx, pl, 23*time.Hour, 500*time.Millisecond) {
		if s.Metrics.CapacityMbps <= 0 {
			t.Fatalf("watched sample without capacity: %+v", s)
		}
		if n++; n == 2 {
			cancel()
		}
		if n > 2 {
			break
		}
	}
	if n < 2 {
		t.Fatalf("watch yielded %d samples", n)
	}
}

func TestDeterminismAcrossFacade(t *testing.T) {
	run := func() float64 {
		tb := DefaultTestbed(99)
		tput, _, _, err := MeasureLink(tb, 1, 9, 11*time.Hour, 3*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return tput
	}
	if run() != run() {
		t.Fatal("same seed must reproduce identical measurements")
	}
}
