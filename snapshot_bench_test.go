package repro

// Incremental-snapshot benchmarks: the per-tick cost of Topology.Snapshot
// as a function of how much of the floor is actually dirty. PLC links
// with fresh ROBO tone maps are shift-stable (their passive state is a
// constant of t at a fixed version), so an unprobed PLC-only floor
// re-evaluates nothing tick over tick; probing links gives them real
// (estimated, non-robust) tone maps that ride the flicker/impulse noise
// shift and stay permanently dirty. The 0%/10%/100% sweep shows the
// incremental path's cost scaling with the dirty set, not the floor size.

import (
	"context"
	"testing"
	"time"

	"repro/internal/al"
	"repro/internal/core"
	"repro/internal/testbed"
)

// benchSnapshotIncremental builds a PLC-only topology from the
// large-office floor and probes every probeEvery-th link (0 = none,
// 1 = all) so that fraction of the floor re-evaluates each tick. One op
// is 10 ticks at one-second cadence.
func benchSnapshotIncremental(b *testing.B, probeEvery int) {
	b.ReportAllocs()
	opts := testbed.DefaultOptions()
	opts.Scenario = "large-office"
	opts.Decimate = 16
	tb := testbed.New(opts)
	full, err := tb.Topology()
	if err != nil {
		b.Fatal(err)
	}
	at := 11 * time.Hour
	const probe = 500 * time.Millisecond
	topo := al.NewTopology()
	plc := 0
	for _, l := range full.Links() {
		if l.Medium() != core.PLC {
			continue
		}
		if probeEvery > 0 && plc%probeEvery == 0 {
			if err := al.Probe(context.Background(), l, at, probe); err != nil {
				b.Fatal(err)
			}
		}
		topo.Add(l)
		plc++
	}
	t := at + probe
	topo.Snapshot(t) // prime the incremental base outside the timer

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < 10; n++ {
			t += time.Second
			topo.Snapshot(t)
		}
	}
}

func BenchmarkSnapshotIncrementalDirty0(b *testing.B)   { benchSnapshotIncremental(b, 0) }
func BenchmarkSnapshotIncrementalDirty10(b *testing.B)  { benchSnapshotIncremental(b, 10) }
func BenchmarkSnapshotIncrementalDirty100(b *testing.B) { benchSnapshotIncremental(b, 1) }
